package sim

import (
	"fmt"
	"math"
)

// Bytes is a data quantity in bytes.
type Bytes = int64

// Common byte quantities.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(b Bytes) string {
	switch {
	case b >= TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", b)
}

// EfficiencyFunc maps the current load — the summed fair-share weights of
// the active flows — to the fraction of nominal capacity the device can
// sustain. It models the seek overhead a disk pays when serving
// interleaved streams: n equal-weight foreground streams present load n,
// while a low-weight background stream (e.g. a deprioritized migration)
// adds only its fractional share of seek pressure. It must return a value
// in (0, 1] and should be non-increasing.
type EfficiencyFunc func(load float64) float64

// FlatEfficiency ignores concurrency; suitable for NICs and memory.
func FlatEfficiency(float64) float64 { return 1 }

// SeekEfficiency returns an EfficiencyFunc where each unit of additional
// concurrent load costs penalty of the device's total throughput:
// eff(w) = 1 / (1 + penalty*(w-1)).
func SeekEfficiency(penalty float64) EfficiencyFunc {
	return func(load float64) float64 {
		if load <= 1 {
			return 1
		}
		return 1 / (1 + penalty*(load-1))
	}
}

// FlowSink observes flow lifecycle on every Resource of an Engine.
// Install with Engine.SetFlowSink. FlowStarted fires on admission
// (Start/StartWeighted/StartLoad); FlowEnded fires on completion
// (completed=true, before the flow's done callback) or cancellation
// (completed=false). Implemented by the internal/trace Tracer.
type FlowSink interface {
	FlowStarted(r *Resource, f *Flow)
	FlowEnded(r *Resource, f *Flow, completed bool)
}

// Flow is one transfer in progress on a Resource. Flows receive a
// weighted fair share of the resource's current effective capacity and
// complete when their remaining bytes reach zero.
type Flow struct {
	res       *Resource
	remaining float64 // bytes left; +Inf for persistent load flows
	weight    float64
	rate      float64 // current bytes/sec, maintained by the resource
	started   Time
	done      func(f *Flow)
	active    bool
	total     float64 // original size, NaN for persistent
}

// Remaining reports the bytes this flow still has to transfer.
func (f *Flow) Remaining() Bytes { return Bytes(math.Ceil(f.remaining)) }

// Rate reports the flow's current transfer rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Started reports when the flow was admitted.
func (f *Flow) Started() Time { return f.started }

// Active reports whether the flow is still transferring.
func (f *Flow) Active() bool { return f.active }

// Size reports the flow's original size in bytes, or 0 for persistent
// load flows (which have no size).
func (f *Flow) Size() Bytes {
	if math.IsNaN(f.total) {
		return 0
	}
	return Bytes(f.total)
}

// Resource models a device with a shared, time-varying capacity —
// a disk or a NIC. Concurrent flows share the effective capacity in
// proportion to their weights (generalized processor sharing), and the
// effective capacity is baseCapacity × scale × efficiency(numFlows).
//
// This fluid-flow model is what makes residual-bandwidth effects emerge
// naturally: interference flows, task reads and migrations all compete on
// the same Resource and each automatically slows the others down.
//
// The resource keeps exactly one engine timer, armed for the earliest
// completion among its flows; admissions, cancellations and capacity
// changes re-arm that single timer instead of rescheduling one event per
// flow, so a state change on a busy device costs one O(log n) queue
// operation rather than one per active flow.
type Resource struct {
	eng   *Engine
	name  string
	base  float64 // bytes/sec nominal
	scale float64 // dynamic capacity multiplier (hardware heterogeneity)
	eff   EfficiencyFunc
	// flows keeps admission order: iteration order drives float
	// summation and completion-event scheduling, and a map here would
	// make identical seeds give different results run to run.
	flows []*Flow
	// totalW is the summed weight of the active flows, maintained
	// incrementally (and reset to zero whenever the resource idles, so
	// float drift cannot accumulate across busy periods).
	totalW     float64
	lastUpdate Time
	timer      *Event // single completion timer; nil when nothing finite runs
	timerFn    func() // bound once so re-arming allocates nothing

	// accounting
	bytesMoved float64 // total bytes completed through this resource
	busy       Duration
}

// NewResource creates a resource with the given nominal capacity in
// bytes/sec. eff may be nil for flat (no concurrency penalty) behaviour.
func NewResource(eng *Engine, name string, capacity float64, eff EfficiencyFunc) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	if eff == nil {
		eff = FlatEfficiency
	}
	r := &Resource{
		eng:   eng,
		name:  name,
		base:  capacity,
		scale: 1,
		eff:   eff,
	}
	r.timerFn = r.onTimer
	return r
}

// Name reports the resource's identifier, e.g. "disk:node3".
func (r *Resource) Name() string { return r.name }

// Capacity reports the nominal capacity in bytes/sec before scaling.
func (r *Resource) Capacity() float64 { return r.base }

// EffectiveCapacity reports the current total throughput available to the
// active flows: base × scale × efficiency(load).
func (r *Resource) EffectiveCapacity() float64 {
	return r.base * r.scale * r.eff(r.totalWeight())
}

func (r *Resource) totalWeight() float64 { return r.totalW }

// ActiveFlows reports the number of in-progress flows.
func (r *Resource) ActiveFlows() int { return len(r.flows) }

// BytesMoved reports the cumulative bytes transferred to completion plus
// progress of active flows up to the current instant.
func (r *Resource) BytesMoved() Bytes {
	r.advance()
	return Bytes(r.bytesMoved)
}

// BusyTime reports the cumulative time the resource had at least one
// active flow.
func (r *Resource) BusyTime() Duration {
	r.advance()
	return r.busy
}

// Utilization reports the fraction of the window [since, now] during which
// the resource was busy.
func (r *Resource) Utilization(since Time) float64 {
	r.advance()
	window := r.eng.Now().Sub(since)
	if window <= 0 {
		return 0
	}
	b := r.busy
	if b > window {
		b = window
	}
	return float64(b) / float64(window)
}

// SetScale changes the dynamic capacity multiplier (e.g. 0.3 for a
// handicapped node). Active flows are re-rated immediately.
func (r *Resource) SetScale(s float64) {
	if s <= 0 {
		panic("sim: resource scale must be positive")
	}
	r.advance()
	r.scale = s
	r.rebalance()
}

// Scale reports the current capacity multiplier.
func (r *Resource) Scale() float64 { return r.scale }

// Start admits a transfer of size bytes with weight 1. done, if non-nil,
// runs when the transfer completes.
func (r *Resource) Start(size Bytes, done func(f *Flow)) *Flow {
	return r.StartWeighted(size, 1, done)
}

// StartWeighted admits a transfer of size bytes with the given fair-share
// weight.
func (r *Resource) StartWeighted(size Bytes, weight float64, done func(f *Flow)) *Flow {
	if size <= 0 {
		panic("sim: flow size must be positive")
	}
	if weight <= 0 {
		panic("sim: flow weight must be positive")
	}
	r.advance()
	f := &Flow{
		res:       r,
		remaining: float64(size),
		total:     float64(size),
		weight:    weight,
		started:   r.eng.Now(),
		done:      done,
		active:    true,
	}
	r.flows = append(r.flows, f)
	r.totalW += weight
	r.rebalance()
	if s := r.eng.flowSink; s != nil {
		s.FlowStarted(r, f)
	}
	return f
}

// StartLoad admits a persistent flow that never completes on its own —
// a background interference stream (the paper's dd jobs). It is removed
// with Flow.Cancel.
func (r *Resource) StartLoad(weight float64) *Flow {
	if weight <= 0 {
		panic("sim: flow weight must be positive")
	}
	r.advance()
	f := &Flow{
		res:       r,
		remaining: math.Inf(1),
		total:     math.NaN(),
		weight:    weight,
		started:   r.eng.Now(),
		active:    true,
	}
	r.flows = append(r.flows, f)
	r.totalW += weight
	r.rebalance()
	if s := r.eng.flowSink; s != nil {
		s.FlowStarted(r, f)
	}
	return f
}

// Cancel removes a flow before completion. Bytes already moved stay
// counted; the done callback does not run.
func (f *Flow) Cancel() {
	if !f.active {
		return
	}
	r := f.res
	r.advance()
	f.active = false
	r.remove(f)
	r.totalW -= f.weight
	r.rebalance()
	if s := r.eng.flowSink; s != nil {
		s.FlowEnded(r, f, false)
	}
}

// remove deletes a flow while preserving the admission order of the
// remaining flows.
func (r *Resource) remove(f *Flow) {
	for i, g := range r.flows {
		if g == f {
			r.flows = append(r.flows[:i], r.flows[i+1:]...)
			return
		}
	}
}

// advance moves every active flow forward to the current instant at its
// last-computed rate and accrues accounting.
func (r *Resource) advance() {
	now := r.eng.Now()
	dt := now.Sub(r.lastUpdate).Seconds()
	if dt <= 0 {
		r.lastUpdate = now
		return
	}
	if len(r.flows) > 0 {
		r.busy += now.Sub(r.lastUpdate)
	}
	for _, f := range r.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		if !math.IsInf(f.remaining, 1) {
			r.bytesMoved += moved
		} else {
			// Persistent load flows count toward bytesMoved too: they
			// represent real IO consuming the device.
			r.bytesMoved += f.rate * dt
		}
	}
	r.lastUpdate = now
}

// rebalance recomputes every flow's rate and re-arms the completion timer
// for the earliest-finishing flow. Must be called with accounting already
// advanced to now.
func (r *Resource) rebalance() {
	if r.timer != nil {
		r.eng.Cancel(r.timer)
		r.timer = nil
	}
	if len(r.flows) == 0 {
		r.totalW = 0
		return
	}
	totalRate := r.base * r.scale * r.eff(r.totalW)
	minSecs := math.Inf(1)
	for _, f := range r.flows {
		f.rate = totalRate * f.weight / r.totalW
		if math.IsInf(f.remaining, 1) {
			continue
		}
		if secs := f.remaining / f.rate; secs < minSecs {
			minSecs = secs
		}
	}
	if !math.IsInf(minSecs, 1) {
		r.timer = r.eng.Schedule(Duration(minSecs*float64(Second)), r.timerFn)
	}
}

// recomputeRates refreshes flow rates after a removal without touching the
// timer; completeRipe re-arms it once the completion cascade settles.
func (r *Resource) recomputeRates() {
	if len(r.flows) == 0 {
		return
	}
	totalRate := r.base * r.scale * r.eff(r.totalW)
	for _, f := range r.flows {
		f.rate = totalRate * f.weight / r.totalW
	}
}

// Second is one virtual second, for converting float seconds to Duration.
const Second = Duration(1e9)

// onTimer fires when the earliest-finishing flow reaches zero remaining
// bytes: it advances accounting and completes every ripe flow.
func (r *Resource) onTimer() {
	r.timer = nil
	r.advance()
	r.completeRipe()
}

// completeRipe completes, in admission order, every flow whose remaining
// bytes finish within the current nanosecond at its current rate — which
// is exactly the set of flows whose per-flow completion events would fire
// at this same instant under eager per-flow scheduling, so completion
// order and timestamps match that design bit for bit. Rates are
// recomputed after each removal (freeing capacity can ripen the next
// flow), and the single timer is re-armed once the cascade settles.
func (r *Resource) completeRipe() {
	for {
		var ripe *Flow
		for _, f := range r.flows {
			if !math.IsInf(f.remaining, 1) && Duration(f.remaining/f.rate*float64(Second)) == 0 {
				ripe = f
				break
			}
		}
		if ripe == nil {
			break
		}
		// Guard against float drift: the timer fires when remaining ~ 0.
		if ripe.remaining > 0 {
			r.bytesMoved += ripe.remaining
			ripe.remaining = 0
		}
		ripe.active = false
		r.remove(ripe)
		r.totalW -= ripe.weight
		if len(r.flows) == 0 {
			r.totalW = 0
		}
		r.recomputeRates()
		if s := r.eng.flowSink; s != nil {
			s.FlowEnded(r, ripe, true)
		}
		if ripe.done != nil {
			ripe.done(ripe)
		}
	}
	r.rebalance()
}
