package sim

// Indexed binary min-heap of flows ordered by normalized virtual finish
// tag. Every active flow of a Resource lives in the heap (persistent
// load flows sit at +Inf, i.e. after every finite flow), and each Flow
// carries its own slot index so removal by handle is O(log n) with no
// scanning. Ties on the tag break by admission sequence number, which
// is what keeps completion order deterministic and equal to admission
// order for flows that finish at the same virtual-service instant.

// flowLess orders flows by (finish tag, admission seq).
func flowLess(a, b *Flow) bool {
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.seq < b.seq
}

// heapPush inserts f and records its slot index.
func (r *Resource) heapPush(f *Flow) {
	r.heap = append(r.heap, f)
	r.heapUp(len(r.heap)-1, f)
}

// heapRemove unlinks the flow occupying slot i. The slot is refilled
// with the last element, which then sifts to its proper place.
func (r *Resource) heapRemove(i int) {
	h := r.heap
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	r.heap = h[:n]
	if i == n {
		return
	}
	if !r.heapDown(i, last) {
		r.heapUp(i, last)
	}
}

// heapUp sifts f toward the root from the hole at slot i, using hole
// moves (single final write) rather than swaps.
func (r *Resource) heapUp(i int, f *Flow) {
	h := r.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !flowLess(f, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].pos = int32(i)
		i = parent
	}
	h[i] = f
	f.pos = int32(i)
}

// heapDown sifts f away from the root from the hole at slot i and
// reports whether it moved (callers fall back to heapUp when it did
// not, the standard fix-in-place pattern).
func (r *Resource) heapDown(i int, f *Flow) bool {
	h := r.heap
	n := len(h)
	start := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if rc := l + 1; rc < n && flowLess(h[rc], h[l]) {
			min = rc
		}
		if !flowLess(h[min], f) {
			break
		}
		h[i] = h[min]
		h[i].pos = int32(i)
		i = min
	}
	h[i] = f
	f.pos = int32(i)
	return i > start
}
