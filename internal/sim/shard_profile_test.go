package sim

import (
	"testing"
	"time"
)

// profileModel drives a small two-shard ping-pong with an extra idle
// third shard whose sparse events force lookahead stalls.
func profileModel(workers int) ShardProfile {
	se := NewShardedEngine(1, 3, time.Second)
	se.SetWorkers(workers)
	a, b, c := se.Shard(0), se.Shard(1), se.Shard(2)

	n := 0
	var ping func()
	ping = func() {
		n++
		if n >= 40 {
			return
		}
		src, dst := a, 1
		if n%2 == 1 {
			src, dst = b, 0
		}
		src.Send(dst, time.Second, ping)
	}
	a.Schedule(time.Millisecond, ping)
	// Shard 2 has work far apart: it is busy in the census but its next
	// event usually lies beyond the window cap — a lookahead stall.
	for i := 1; i <= 5; i++ {
		c.Schedule(time.Duration(i)*10*time.Second, func() {})
	}
	se.Run()
	return se.Profile()
}

func TestShardProfileAccounting(t *testing.T) {
	p := profileModel(1)
	if p.Rounds == 0 {
		t.Fatal("no coordinated rounds profiled")
	}
	if p.Delivered != 39 {
		t.Errorf("delivered = %d, want 39 ping-pong messages", p.Delivered)
	}
	if p.Sends[0][1]+p.Sends[1][0] != 39 {
		t.Errorf("edge sends 0->1 %d + 1->0 %d, want total 39", p.Sends[0][1], p.Sends[1][0])
	}
	if p.Sends[0][1] == 0 || p.Sends[1][0] == 0 {
		t.Error("one ping-pong direction recorded no sends")
	}
	if p.Stalled[2] == 0 {
		t.Error("sparse shard recorded no lookahead stalls")
	}
	var exec uint64
	for _, e := range p.Executed {
		exec += e
	}
	if exec+p.SoloExecuted == 0 {
		t.Error("profile recorded no executed events")
	}
	if p.StallRate() <= 0 || p.StallRate() >= 1 {
		t.Errorf("stall rate = %v, want in (0,1)", p.StallRate())
	}
}

// The profile is a pure function of virtual-time state: every field
// must be identical at any worker count.
func TestShardProfileWorkerInvariant(t *testing.T) {
	ref := profileModel(1)
	for _, workers := range []int{2, 3} {
		p := profileModel(workers)
		if p.Rounds != ref.Rounds || p.SoloRounds != ref.SoloRounds ||
			p.SoloExecuted != ref.SoloExecuted || p.Delivered != ref.Delivered {
			t.Errorf("workers=%d: scalar profile differs: %+v vs %+v", workers, p, ref)
		}
		for i := range ref.Windows {
			if p.Windows[i] != ref.Windows[i] || p.Stalled[i] != ref.Stalled[i] || p.Executed[i] != ref.Executed[i] {
				t.Errorf("workers=%d shard %d: windows/stalls/executed %d/%d/%d vs %d/%d/%d",
					workers, i, p.Windows[i], p.Stalled[i], p.Executed[i],
					ref.Windows[i], ref.Stalled[i], ref.Executed[i])
			}
		}
		for i := range ref.Sends {
			for j := range ref.Sends[i] {
				if p.Sends[i][j] != ref.Sends[i][j] {
					t.Errorf("workers=%d: sends[%d][%d] = %d, want %d", workers, i, j, p.Sends[i][j], ref.Sends[i][j])
				}
			}
		}
	}
}

// SoloRate covers the solo fast path: a model pinned to one shard
// never runs a coordinated window.
func TestShardProfileSoloRate(t *testing.T) {
	se := NewShardedEngine(1, 4, time.Second)
	for i := 0; i < 10; i++ {
		se.Shard(0).Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	se.Run()
	p := se.Profile()
	if p.Rounds != 0 || p.SoloRounds == 0 {
		t.Errorf("pinned model: rounds %d solo %d, want 0 and >0", p.Rounds, p.SoloRounds)
	}
	if p.SoloRate() != 1 {
		t.Errorf("solo rate = %v, want 1", p.SoloRate())
	}
	if p.SoloExecuted != 10 {
		t.Errorf("solo executed = %d, want 10", p.SoloExecuted)
	}
}
