// Package metrics provides the small statistical toolkit the DYRS
// reproduction uses everywhere: exponentially weighted moving averages
// (the paper's migration-time estimator), sample collections with
// percentile/CDF extraction, fixed-bin histograms, and time-series
// recorders for plotting estimate trajectories (Fig. 9) and memory
// usage (Fig. 7).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// EWMA is an exponentially weighted moving average. Alpha is the weight
// given to each new observation: est = alpha*obs + (1-alpha)*est.
// The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	samples int
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe incorporates a new sample. The first sample initializes the
// average directly.
func (e *EWMA) Observe(v float64) {
	if e.samples == 0 {
		e.value = v
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.samples++
}

// Value reports the current average, or 0 before any samples.
func (e *EWMA) Value() float64 { return e.value }

// Samples reports how many observations have been incorporated.
func (e *EWMA) Samples() int { return e.samples }

// Set overrides the current value without counting a sample; used to seed
// an estimator with a prior.
func (e *EWMA) Set(v float64) {
	e.value = v
	if e.samples == 0 {
		e.samples = 1
	}
}

// Sample is an accumulating collection of float64 observations supporting
// summary statistics, percentiles and CDF extraction.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// NewSample returns an empty sample collection.
func NewSample() *Sample { return &Sample{} }

// Add appends an observation.
func (s *Sample) Add(v float64) {
	s.xs = append(s.xs, v)
	s.sorted = false
	s.sum += v
}

// AddAll appends many observations.
func (s *Sample) AddAll(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Sum reports the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

// Min reports the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max reports the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Stddev reports the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	s.ensureSorted()
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median reports the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// FractionBelow reports the fraction of observations <= v (the empirical
// CDF evaluated at v).
func (s *Sample) FractionBelow(v float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	s.ensureSorted()
	idx := sort.SearchFloat64s(s.xs, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(n)
}

// CDFPoint is one point of an empirical CDF: fraction F of observations
// are <= X.
type CDFPoint struct {
	X float64
	F float64
}

// CDF extracts the empirical CDF sampled at n evenly spaced quantiles.
func (s *Sample) CDF(n int) []CDFPoint {
	if s.Len() == 0 || n <= 0 {
		return nil
	}
	pts := make([]CDFPoint, n)
	for i := 0; i < n; i++ {
		f := float64(i+1) / float64(n)
		pts[i] = CDFPoint{X: s.Percentile(f * 100), F: f}
	}
	return pts
}

// Values returns a copy of all observations (sorted).
func (s *Sample) Values() []float64 {
	s.ensureSorted()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Histogram counts observations into fixed-width bins over [lo, hi).
// Observations outside the range land in the first or last bin.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add counts one observation.
func (h *Histogram) Add(v float64) {
	idx := int((v - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.n++
}

// Count reports the total observations.
func (h *Histogram) Count() int { return h.n }

// Bins returns a copy of the per-bin counts.
func (h *Histogram) Bins() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// BinCenter reports the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w
}

// PDF returns the per-bin probability mass (fractions summing to 1).
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	for i, c := range h.bins {
		out[i] = float64(c) / float64(h.n)
	}
	return out
}

// TimePoint is one (time, value) sample of a time series. T is in seconds
// of virtual time.
type TimePoint struct {
	T float64
	V float64
}

// TimeSeries records (time, value) samples, e.g. a slave's migration-time
// estimate over a run (Fig. 9) or per-node buffered bytes (Fig. 7).
type TimeSeries struct {
	name string
	pts  []TimePoint
}

// NewTimeSeries returns an empty named series.
func NewTimeSeries(name string) *TimeSeries { return &TimeSeries{name: name} }

// Name reports the series label.
func (ts *TimeSeries) Name() string { return ts.name }

// Record appends a sample. Samples should be appended in time order.
func (ts *TimeSeries) Record(t, v float64) {
	ts.pts = append(ts.pts, TimePoint{T: t, V: v})
}

// Points returns the recorded samples (not a copy; callers must not
// mutate).
func (ts *TimeSeries) Points() []TimePoint { return ts.pts }

// Len reports the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.pts) }

// Last reports the final sample, or a zero TimePoint when empty.
func (ts *TimeSeries) Last() TimePoint {
	if len(ts.pts) == 0 {
		return TimePoint{}
	}
	return ts.pts[len(ts.pts)-1]
}

// MeanValue reports the time-weighted mean of the series, treating each
// sample as holding until the next. Returns the plain mean if fewer than
// two samples exist.
func (ts *TimeSeries) MeanValue() float64 {
	n := len(ts.pts)
	switch n {
	case 0:
		return 0
	case 1:
		return ts.pts[0].V
	}
	var area, span float64
	for i := 0; i+1 < n; i++ {
		dt := ts.pts[i+1].T - ts.pts[i].T
		area += ts.pts[i].V * dt
		span += dt
	}
	if span == 0 {
		return ts.pts[0].V
	}
	return area / span
}

// MaxValue reports the largest sample value.
func (ts *TimeSeries) MaxValue() float64 {
	max := math.Inf(-1)
	for _, p := range ts.pts {
		if p.V > max {
			max = p.V
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Downsample returns at most n points evenly spaced through the series,
// always including the final point; handy for rendering long series as
// compact tables.
func (ts *TimeSeries) Downsample(n int) []TimePoint {
	if n <= 0 || len(ts.pts) == 0 {
		return nil
	}
	if len(ts.pts) <= n {
		return ts.pts
	}
	out := make([]TimePoint, 0, n)
	step := float64(len(ts.pts)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, ts.pts[int(math.Round(float64(i)*step))])
	}
	return out
}

// Speedup reports the paper's speedup metric: (base-new)/base, as a
// fraction. A negative result means a slowdown.
func Speedup(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - new) / base
}
