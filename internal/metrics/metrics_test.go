package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWMABasics(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Samples() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Errorf("first sample should initialize: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Errorf("after 10,20 with alpha .5: %v, want 15", e.Value())
	}
	if e.Samples() != 2 {
		t.Errorf("samples = %d", e.Samples())
	}
}

func TestEWMASet(t *testing.T) {
	e := NewEWMA(0.3)
	e.Set(42)
	if e.Value() != 42 {
		t.Errorf("Set: %v", e.Value())
	}
	if e.Samples() != 1 {
		t.Errorf("Set should mark initialized: %d", e.Samples())
	}
	e.Observe(42)
	if e.Value() != 42 {
		t.Errorf("steady state drifted: %v", e.Value())
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
	NewEWMA(1) // boundary ok
}

// Property: EWMA value is always bounded by min/max of observations.
func TestPropertyEWMABounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEWMA(0.01 + 0.98*rng.Float64())
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			v := rng.Float64() * 1000
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			e.Observe(v)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleStats(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Error("empty sample stats not zero")
	}
	s.AddAll([]float64{4, 1, 3, 2, 5})
	if s.Len() != 5 || s.Sum() != 15 || s.Mean() != 3 {
		t.Errorf("len/sum/mean = %d/%v/%v", s.Len(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 || s.Median() != 3 {
		t.Errorf("min/max/median = %v/%v/%v", s.Min(), s.Max(), s.Median())
	}
	want := math.Sqrt(2)
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev(), want)
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Errorf("p100 = %v", p)
	}
	if p := s.Percentile(50); math.Abs(p-50.5) > 1e-9 {
		t.Errorf("p50 = %v, want 50.5", p)
	}
	if p := s.Percentile(25); math.Abs(p-25.75) > 1e-9 {
		t.Errorf("p25 = %v, want 25.75", p)
	}
}

func TestFractionBelow(t *testing.T) {
	s := NewSample()
	s.AddAll([]float64{1, 2, 3, 4})
	cases := []struct{ v, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := s.FractionBelow(c.v); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	s := NewSample()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s.Add(rng.ExpFloat64() * 10)
	}
	pts := s.CDF(20)
	if len(pts) != 20 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v %+v", i, pts[i-1], pts[i])
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Errorf("last F = %v, want 1", pts[len(pts)-1].F)
	}
}

func TestSampleValuesCopy(t *testing.T) {
	s := NewSample()
	s.AddAll([]float64{3, 1, 2})
	v := s.Values()
	if v[0] != 1 || v[2] != 3 {
		t.Errorf("values not sorted: %v", v)
	}
	v[0] = 99
	if s.Min() == 99 {
		t.Error("Values did not copy")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(v)
	}
	bins := h.Bins()
	// -1,0,1.9 -> bin0; 2 -> bin1; 5 -> bin2; 9.9,10,100 -> bin4.
	want := []int{3, 1, 1, 0, 3}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d", h.Count())
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	pdf := h.PDF()
	var sum float64
	for _, p := range pdf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PDF sums to %v", sum)
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries("est")
	if ts.Name() != "est" || ts.Len() != 0 || ts.MaxValue() != 0 {
		t.Error("fresh series wrong")
	}
	if (ts.Last() != TimePoint{}) {
		t.Error("empty Last not zero")
	}
	ts.Record(0, 10)
	ts.Record(1, 20)
	ts.Record(3, 30)
	if ts.Last().V != 30 || ts.Len() != 3 {
		t.Errorf("last/len = %v/%d", ts.Last(), ts.Len())
	}
	// Time-weighted mean: 10*1 + 20*2 over span 3 = 50/3.
	if m := ts.MeanValue(); math.Abs(m-50.0/3) > 1e-12 {
		t.Errorf("MeanValue = %v", m)
	}
	if ts.MaxValue() != 30 {
		t.Errorf("MaxValue = %v", ts.MaxValue())
	}
}

func TestTimeSeriesDownsample(t *testing.T) {
	ts := NewTimeSeries("x")
	for i := 0; i < 100; i++ {
		ts.Record(float64(i), float64(i))
	}
	d := ts.Downsample(10)
	if len(d) != 10 {
		t.Fatalf("downsample len = %d", len(d))
	}
	if d[0].T != 0 || d[9].T != 99 {
		t.Errorf("endpoints = %v, %v", d[0], d[9])
	}
	if got := ts.Downsample(1000); len(got) != 100 {
		t.Errorf("downsample beyond length should return all: %d", len(got))
	}
	if ts.Downsample(0) != nil {
		t.Error("downsample(0) should be nil")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(100, 67); math.Abs(s-0.33) > 1e-12 {
		t.Errorf("speedup = %v", s)
	}
	if s := Speedup(100, 211); math.Abs(s+1.11) > 1e-12 {
		t.Errorf("slowdown = %v", s)
	}
	if Speedup(0, 5) != 0 {
		t.Error("zero base should return 0")
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPropertyPercentileMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSample()
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev-1e-9 || v < s.Min()-1e-9 || v > s.Max()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
