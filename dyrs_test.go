package dyrs_test

import (
	"testing"
	"time"

	"dyrs"
)

// Facade tests: exercise the library exactly the way the README and the
// examples do.

func TestFacadeQuickstart(t *testing.T) {
	env := dyrs.NewEnv(dyrs.PolicyDYRS, dyrs.DefaultOptions(1))
	defer env.Close()
	if err := env.CreateInput("logs", 2*dyrs.GB); err != nil {
		t.Fatal(err)
	}
	spec := env.Prepare(dyrs.SortSpec("logs", 4, true))
	spec.ExtraLeadTime = 10 * time.Second
	job, err := env.FW.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.WaitJob(job, time.Hour); err != nil {
		t.Fatal(err)
	}
	if job.Duration() <= 0 || job.MapPhase() <= 0 {
		t.Errorf("bogus timings: %v %v", job.Duration(), job.MapPhase())
	}
	mem := 0
	for _, tr := range job.Tasks {
		if tr.Source.FromMemory() {
			mem++
		}
	}
	if mem == 0 {
		t.Error("quickstart migration produced no memory reads")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() float64 {
		env := dyrs.NewEnv(dyrs.PolicyDYRS, dyrs.DefaultOptions(99))
		defer env.Close()
		if err := env.CreateInput("x", 3*dyrs.GB); err != nil {
			t.Fatal(err)
		}
		spec := env.Prepare(dyrs.SortSpec("x", 4, true))
		spec.ExtraLeadTime = 5 * time.Second
		j, err := env.FW.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.WaitJob(j, time.Hour); err != nil {
			t.Fatal(err)
		}
		return j.Duration().Seconds()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different results: %v vs %v", a, b)
	}
}

func TestFacadeQueriesAndPolicies(t *testing.T) {
	if got := len(dyrs.TPCDSQueries()); got != 10 {
		t.Errorf("queries = %d", got)
	}
	if len(dyrs.AllPolicies) != 4 {
		t.Errorf("policies = %d", len(dyrs.AllPolicies))
	}
	if !dyrs.PolicyDYRS.Migrates() || dyrs.PolicyRAM.Migrates() {
		t.Error("Migrates wrong")
	}
}

func TestFacadeTraceEntryPoint(t *testing.T) {
	rep := dyrs.RunTrace(5)
	if rep.Trace.MeanUtilization() <= 0 {
		t.Error("empty trace from facade")
	}
}

func TestFacadeRegistryAndParallelRun(t *testing.T) {
	reg := dyrs.Registry()
	if len(reg) == 0 {
		t.Fatal("empty registry")
	}
	rep, err := dyrs.RunAllJobs(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 7 || len(rep.Hive) == 0 || len(rep.Iterative) == 0 {
		t.Errorf("parallel report incomplete: seed=%d", rep.Seed)
	}
}
