// Package dyrs is a from-scratch reproduction of "DYRS: Bandwidth-Aware
// Disk-to-Memory Migration of Cold Data in Big-Data File Systems"
// (Dzinamarira, Dinu, Ng — IPDPS 2019).
//
// It bundles a deterministic discrete-event simulation of the whole
// stack the paper builds on — fluid-flow disk and network models, an
// HDFS-like distributed file system, a YARN-like MapReduce scheduler —
// together with the DYRS migration framework itself (delayed binding,
// Algorithm 1 earliest-finish replica targeting, EWMA migration-time
// estimation with in-progress updates, reference-list eviction) and the
// comparison schemes from the evaluation (default HDFS, inputs pinned in
// RAM, Ignem, and a naive balancer).
//
// # Quick start
//
//	env := dyrs.NewEnv(dyrs.PolicyDYRS, dyrs.DefaultOptions(1))
//	defer env.Close()
//	env.CreateInput("logs", 4*dyrs.GB)
//	spec := env.Prepare(dyrs.SortSpec("logs", 8, true))
//	job, _ := env.FW.Submit(spec)
//	env.WaitJob(job, time.Hour)
//	fmt.Println("job took", job.Duration())
//
// # Reproducing the paper
//
// One entry point exists per table and figure of the evaluation; see
// RunHive (Fig. 4), RunSWIM (Table I, Figs. 5-7), RunFig8, RunTableII
// (Table II + Fig. 9), RunFig10, RunFig11, and RunTrace (Figs. 1-3).
// The cmd/dyrs-bench binary prints them all. Experiments are registered
// declaratively (Registry) and independent of one another, so RunAllJobs
// runs them on a worker pool with results merged in paper order.
//
// Everything runs in virtual time from seeded randomness: the same seed
// always produces byte-identical results, and a full evaluation pass
// takes seconds of wall-clock time. That reproducibility claim is
// machine-checked: VerifyDeterminism (and dyrs-bench -verify in CI)
// runs every experiment serially and in parallel at the same seed and
// fails if any canonical-JSON hash diverges.
package dyrs

import (
	"dyrs/internal/compute"
	"dyrs/internal/experiments"
	"dyrs/internal/gtrace"
	"dyrs/internal/sim"
	"dyrs/internal/workload"
)

// Byte quantities for sizing inputs.
const (
	KB = sim.KB
	MB = sim.MB
	GB = sim.GB
	TB = sim.TB
)

// Bytes is a data quantity in bytes.
type Bytes = sim.Bytes

// Policy selects a file-system configuration to evaluate.
type Policy = experiments.Policy

// The evaluated configurations (§V-A).
const (
	PolicyHDFS  = experiments.HDFS  // default file system, no migration
	PolicyRAM   = experiments.RAM   // inputs pinned in memory (upper bound)
	PolicyIgnem = experiments.Ignem // random immediate binding
	PolicyDYRS  = experiments.DYRS  // the paper's scheme
	PolicyNaive = experiments.Naive // DYRS minus straggler avoidance
)

// AllPolicies lists the four headline configurations in table order.
var AllPolicies = experiments.AllPolicies

// Env is a fully wired simulated deployment: engine, cluster, DFS,
// optional migration framework, and compute framework.
type Env = experiments.Env

// Options configures an environment's cluster.
type Options = experiments.Options

// JobSpec describes a MapReduce job; Job is a submitted instance.
type (
	JobSpec = compute.JobSpec
	Job     = compute.Job
)

// HiveQuery is one multi-stage analytical query; SWIMJob is one job of
// the trace-based workload.
type (
	HiveQuery = workload.HiveQuery
	SWIMJob   = workload.SWIMJob
)

// NewEnv builds a simulated deployment running the given policy.
func NewEnv(policy Policy, opt Options) *Env { return experiments.NewEnv(policy, opt) }

// DefaultOptions mirrors the paper's 7-worker testbed.
func DefaultOptions(seed int64) Options { return experiments.DefaultOptions(seed) }

// SortSpec builds a Sort job over the named file (§V-B3).
func SortSpec(file string, reducers int, migrate bool) JobSpec {
	return workload.SortSpec(file, reducers, migrate)
}

// TPCDSQueries returns the ten-query Hive suite of §V-B1.
func TPCDSQueries() []HiveQuery { return workload.TPCDSQueries() }

// Experiment entry points — one per table/figure of the evaluation.
var (
	// RunHive reproduces Fig. 4: the ten Hive queries under all four
	// configurations.
	RunHive = experiments.RunHive
	// RunHiveQuery runs a single query under one policy.
	RunHiveQuery = experiments.RunHiveQuery
	// RunSWIM reproduces Table I and Figs. 5-7: the 200-job trace-based
	// workload under all four configurations.
	RunSWIM = experiments.RunSWIM
	// RunSWIMOnce replays the SWIM workload under one policy.
	RunSWIMOnce = experiments.RunSWIMOnce
	// RunFig8 reproduces Fig. 8: per-DataNode read distribution.
	RunFig8 = experiments.RunFig8
	// RunTableII reproduces Table II and Fig. 9: interference patterns.
	RunTableII = experiments.RunTableII
	// RunFig10 reproduces Fig. 10: end-of-migration straggler timelines.
	RunFig10 = experiments.RunFig10
	// RunFig11 reproduces Fig. 11: the size × lead-time sort sweep.
	RunFig11 = experiments.RunFig11
	// RunTrace reproduces Figs. 1-3: the Google-trace motivation
	// analyses.
	RunTrace = experiments.RunTrace
	// RunMotivation reproduces the §I read-speedup micro-comparison
	// (RAM vs disk vs SSD block reads; mapper speedup from pinned
	// inputs).
	RunMotivation = experiments.RunMotivation
	// RunOrderPolicies evaluates the paper's §III future work:
	// alternative migration ordering policies (FIFO/SJF/EDF) with
	// scheduler cooperation.
	RunOrderPolicies = experiments.RunOrderPolicies
	// RunHotCold contrasts a PACMan-like cache with DYRS on a workload
	// mixing hot (repeatedly read) and cold (singly-accessed) data.
	RunHotCold = experiments.RunHotCold
	// RunIterative measures the cold-start penalty of iterative jobs
	// (§I) with and without migration.
	RunIterative = experiments.RunIterative
)

// Registry returns every registered experiment in presentation order;
// Experiment is one registered unit of the evaluation.
var Registry = experiments.Registry

// Experiment is one registered experiment: name, aliases, run func,
// text rendering and JSON merge.
type Experiment = experiments.Experiment

// FullReport aggregates every experiment into one JSON document.
type FullReport = experiments.FullReport

// VerifyReport is the outcome of a determinism check.
type VerifyReport = experiments.VerifyReport

// RunAll executes every registered experiment serially and aggregates
// the results into one report.
var RunAll = experiments.RunAll

// RunAllJobs executes every registered experiment on a worker pool of
// the given size (jobs <= 0 means GOMAXPROCS). The merged report is
// byte-identical at any worker count.
func RunAllJobs(seed int64, jobs int) (*FullReport, error) {
	return experiments.RunAllParallel(seed, jobs, nil)
}

// VerifyDeterminism runs every experiment twice at the same seed —
// serially and on a jobs-wide pool — and reports per-experiment result
// hashes, which diverge only if the determinism contract is broken.
func VerifyDeterminism(seed int64, jobs int) (VerifyReport, error) {
	return experiments.VerifyDeterminism(seed, jobs, nil)
}

// Report types returned by the experiment entry points.
type (
	HiveReport       = experiments.HiveReport
	SWIMReport       = experiments.SWIMReport
	SWIMRun          = experiments.SWIMRun
	Fig8Report       = experiments.Fig8Report
	TableIIReport    = experiments.TableIIReport
	Fig10Report      = experiments.Fig10Report
	Fig11Report      = experiments.Fig11Report
	TraceReport      = experiments.TraceReport
	MotivationReport = experiments.MotivationReport
	OrderReport      = experiments.OrderReport
	HotColdReport    = experiments.HotColdReport
	IterativeReport  = experiments.IterativeReport
)

// Trace is the synthetic Google-cluster trace used by RunTrace.
type Trace = gtrace.Trace
