// Hive example: run three TPC-DS-style analytical queries under every
// file-system configuration the paper compares, on a cluster where one
// node's disk is busy with background IO (the heterogeneity that breaks
// Ignem and that DYRS routes around).
//
//	go run ./examples/hive
package main

import (
	"fmt"
	"log"

	"dyrs"
)

func main() {
	queries := dyrs.TPCDSQueries()
	picks := []int{1, 4, 8} // 3.5 GB, 8 GB, 20 GB

	fmt.Println("query  input    HDFS     RAM      Ignem    DYRS     DYRS speedup")
	for _, qi := range picks {
		q := queries[qi]
		var hdfs float64
		fmt.Printf("%-6s %5.1fGB", q.Name, float64(q.InputSize)/float64(dyrs.GB))
		for _, policy := range dyrs.AllPolicies {
			seconds, err := dyrs.RunHiveQuery(q, policy, 1)
			if err != nil {
				log.Fatal(err)
			}
			if policy == dyrs.PolicyHDFS {
				hdfs = seconds
			}
			fmt.Printf("  %6.1fs", seconds)
			if policy == dyrs.PolicyDYRS {
				fmt.Printf("  %+.0f%%", (hdfs-seconds)/hdfs*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nEach query runs in isolation; durations include compile time and")
	fmt.Println("platform overheads — the lead-time DYRS uses to migrate the table.")
}
