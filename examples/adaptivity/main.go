// Adaptivity example: visualize how DYRS's per-node migration-time
// estimate tracks disk interference that switches on and off (the
// behaviour behind Fig. 9), using an ASCII strip chart.
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"dyrs"
	"dyrs/internal/cluster"
	"dyrs/internal/sim"
)

func main() {
	env := dyrs.NewEnv(dyrs.PolicyDYRS, dyrs.DefaultOptions(1))
	defer env.Close()

	// Interference on node 1 that alternates every 15 seconds — like the
	// paper's custom interference generator.
	pattern := cluster.StartAlternating(env.Eng, env.Cl.Node(1), 2, 2.5, 15*time.Second, true)
	defer pattern.Stop()

	// A steady stream of migrations keeps the estimators fed.
	if err := env.CreateInput("cold-data", 40*dyrs.GB); err != nil {
		log.Fatal(err)
	}
	if err := env.Coord.Migrate(1, []string{"cold-data"}, false); err != nil {
		log.Fatal(err)
	}
	env.Eng.RunUntil(sim.Time(2 * time.Minute))

	fmt.Println("DYRS per-block migration-time estimate (node1 under alternating interference,")
	fmt.Println("node3 undisturbed); one column per heartbeat, height = estimate in seconds:")
	fmt.Println()
	for _, node := range []cluster.NodeID{1, 3} {
		points := env.Coord.EstimateSeries(node).Points()
		var peak float64
		for _, p := range points {
			if p.V > peak {
				peak = p.V
			}
		}
		fmt.Printf("node%d (peak %.1fs):\n", node, peak)
		for level := 4; level >= 1; level-- {
			threshold := peak * float64(level) / 5
			var row strings.Builder
			for _, p := range points {
				if p.V >= threshold {
					row.WriteByte('#')
				} else {
					row.WriteByte(' ')
				}
			}
			fmt.Printf("  %5.1fs |%s\n", threshold, row.String())
		}
		fmt.Printf("         +%s\n\n", strings.Repeat("-", len(points)))
	}
	fmt.Println("The node1 estimate rises within a few heartbeats of interference starting")
	fmt.Println("(the in-progress update of paper §IV-A) and falls as soon as migrations")
	fmt.Println("complete quickly again. Algorithm 1 steers pending work accordingly.")
}
