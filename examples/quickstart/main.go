// Quickstart: build a small simulated cluster, run the same Sort job
// with and without DYRS migration, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dyrs"
)

func main() {
	for _, policy := range []dyrs.Policy{dyrs.PolicyHDFS, dyrs.PolicyDYRS} {
		// A 7-worker cluster like the paper's testbed. The same seed
		// gives both policies identical block placement and timing.
		env := dyrs.NewEnv(policy, dyrs.DefaultOptions(1))

		// 4 GB of cold input data sitting on disk.
		if err := env.CreateInput("clickstream-2026-07-04", 4*dyrs.GB); err != nil {
			log.Fatal(err)
		}

		// A Sort job over it. Prepare wires the policy's migration
		// request into the job submitter; ExtraLeadTime simulates the
		// job waiting in a queue before its tasks launch — the window
		// DYRS uses to move the input into memory.
		spec := env.Prepare(dyrs.SortSpec("clickstream-2026-07-04", 8, true))
		spec.ExtraLeadTime = 10 * time.Second

		job, err := env.FW.Submit(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := env.WaitJob(job, time.Hour); err != nil {
			log.Fatal(err)
		}

		memReads := 0
		for _, task := range job.Tasks {
			if task.Source.FromMemory() {
				memReads++
			}
		}
		fmt.Printf("%-20s map phase %6.1fs, end-to-end %6.1fs, %d/%d blocks read from memory\n",
			policy, job.MapPhase().Seconds(), job.Duration().Seconds(), memReads, len(job.Tasks))
		env.Close()
	}
}
