// SWIM example: replay a slice of the Facebook-derived trace workload —
// concurrent jobs with heavy-tailed input sizes — under HDFS and DYRS,
// and report per-size-bin speedups plus migration statistics.
//
//	go run ./examples/swim
package main

import (
	"fmt"
	"log"

	"dyrs"
	"dyrs/internal/experiments"
)

func main() {
	runs := map[dyrs.Policy]*dyrs.SWIMRun{}
	for _, policy := range []dyrs.Policy{dyrs.PolicyHDFS, dyrs.PolicyDYRS} {
		run, err := dyrs.RunSWIMOnce(policy, 1)
		if err != nil {
			log.Fatal(err)
		}
		runs[policy] = run
	}

	hdfs, dy := runs[dyrs.PolicyHDFS], runs[dyrs.PolicyDYRS]
	fmt.Printf("replayed %d trace jobs per policy\n\n", len(hdfs.Jobs))
	fmt.Printf("average job duration: HDFS %.1fs, DYRS %.1fs (%+.0f%%)\n",
		hdfs.MeanJobSeconds(), dy.MeanJobSeconds(),
		(hdfs.MeanJobSeconds()-dy.MeanJobSeconds())/hdfs.MeanJobSeconds()*100)

	hb, db := hdfs.MeanJobSecondsByBin(), dy.MeanJobSecondsByBin()
	for _, bin := range experiments.SizeBins {
		fmt.Printf("  %-6s jobs: HDFS %6.1fs  DYRS %6.1fs  (%+.0f%%)\n",
			bin, hb[bin], db[bin], (hb[bin]-db[bin])/hb[bin]*100)
	}

	fmt.Printf("\nmap tasks: HDFS mean %.1fs, DYRS mean %.1fs (%.1fx faster)\n",
		hdfs.MapperDurations.Mean(), dy.MapperDurations.Mean(),
		hdfs.MapperDurations.Mean()/dy.MapperDurations.Mean())
	fmt.Printf("DYRS migrated %.1f GB; peak per-server buffer %.2f GB\n",
		float64(dy.BytesMigrated)/float64(dyrs.GB),
		float64(dy.PeakMemPerServer)/float64(dyrs.GB))
}
