// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus ablations of DYRS's design decisions. Run with
//
//	go test -bench=. -benchmem
//
// Each iteration performs the complete experiment in virtual time.
// Reported metrics (ns/op) measure simulation cost, not cluster time;
// the experiment outputs themselves are printed once per benchmark via
// b.Log at -v, and by cmd/dyrs-bench.
package dyrs_test

import (
	"runtime"
	"testing"
	"time"

	"dyrs"
	"dyrs/internal/cluster"
	"dyrs/internal/compute"
	"dyrs/internal/dfs"
	"dyrs/internal/experiments"
	"dyrs/internal/migration"
	"dyrs/internal/sim"
	"dyrs/internal/trace"
	"dyrs/internal/workload"
)

const benchSeed = 42

// --- Motivation analyses (Figs. 1-3) ---

func BenchmarkFig1TraceUtilizationSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := dyrs.RunTrace(benchSeed)
		if rep.Trace.MeanUtilization() <= 0 {
			b.Fatal("empty trace")
		}
		if i == 0 {
			b.Log("\n" + rep.Fig1())
		}
	}
}

func BenchmarkFig2LeadTimeVsReadTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := dyrs.RunTrace(benchSeed)
		f := rep.Trace.FractionLeadCoversRead()
		if f < 0.6 || f > 0.95 {
			b.Fatalf("lead>read fraction %.2f out of calibration", f)
		}
		if i == 0 {
			b.Log("\n" + rep.Fig2())
		}
	}
}

func BenchmarkFig3UtilizationCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := dyrs.RunTrace(benchSeed)
		if rep.Trace.FractionUnder(0.04) < 0.5 {
			b.Fatal("utilization CDF out of calibration")
		}
		if i == 0 {
			b.Log("\n" + rep.Fig3())
		}
	}
}

// --- Hive (Fig. 4) ---

func BenchmarkFig4HiveQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := dyrs.RunHive(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if s := rep.MeanSpeedup(experiments.DYRS); s < 0.1 {
			b.Fatalf("DYRS mean Hive speedup %.2f suspiciously low", s)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// --- SWIM (Table I, Figs. 5-7) ---

func runSWIM(b *testing.B) dyrs.SWIMReport {
	b.Helper()
	rep, err := dyrs.RunSWIM(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func BenchmarkTable1SWIMJobDurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runSWIM(b)
		base := rep.Runs[experiments.HDFS].MeanJobSeconds()
		dy := rep.Runs[experiments.DYRS].MeanJobSeconds()
		if dy >= base {
			b.Fatalf("DYRS (%.1fs) did not beat HDFS (%.1fs)", dy, base)
		}
		if i == 0 {
			b.Log("\n" + rep.TableI())
		}
	}
}

func BenchmarkFig5JobDurationBySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runSWIM(b)
		if i == 0 {
			b.Log("\n" + rep.Fig5())
		}
	}
}

func BenchmarkFig6MapTaskDurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runSWIM(b)
		hdfs := rep.Runs[experiments.HDFS].MapperDurations.Mean()
		dy := rep.Runs[experiments.DYRS].MapperDurations.Mean()
		if hdfs/dy < 1.2 {
			b.Fatalf("mapper speedup %.2fx below calibration", hdfs/dy)
		}
		if i == 0 {
			b.Log("\n" + rep.Fig6())
		}
	}
}

func BenchmarkFig7MemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := runSWIM(b)
		if rep.Runs[experiments.RAM].HypotheticalMemSamples == nil {
			b.Fatal("missing hypothetical memory reconstruction")
		}
		if i == 0 {
			b.Log("\n" + rep.Fig7())
		}
	}
}

// --- Sort (Figs. 8-11, Table II) ---

func BenchmarkFig8ReadDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := dyrs.RunFig8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkTable2InterferencePatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := dyrs.RunTableII(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 5 {
			b.Fatalf("patterns = %d", len(rep.Rows))
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkFig9EstimateTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := dyrs.RunTableII(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			if len(row.EstimateNode1) == 0 {
				b.Fatalf("no estimate series for %s", row.Figure)
			}
		}
		if i == 0 {
			b.Log("\n" + rep.Fig9String())
		}
	}
}

func BenchmarkFig10StragglerAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := dyrs.RunFig10(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		_, naive := rep.SlowTail(experiments.Naive, 10)
		_, dy := rep.SlowTail(experiments.DYRS, 10)
		if dy >= naive {
			b.Fatalf("DYRS overhang %.1fs not better than naive %.1fs", dy, naive)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkFig11LeadTimeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := dyrs.RunFig11(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 16 {
			b.Fatalf("rows = %d", len(rep.Rows))
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

// --- Ablations of DYRS design decisions (DESIGN.md §4) ---

// ablationSort runs a 20GB DYRS sort under a modified migration config
// and returns the job duration in seconds. The scenario is deliberately
// tight — short lead-time and alternating interference on two nodes — so
// the design knobs under study actually bind: migration overlaps the map
// phase and residual bandwidth keeps shifting.
func ablationSort(b *testing.B, mutate func(*migration.Config)) float64 {
	b.Helper()
	opt := experiments.DefaultOptions(benchSeed)
	mcfg := migration.DefaultConfig()
	if mutate != nil {
		mutate(&mcfg)
	}
	opt.MigrationConfig = &mcfg
	env := experiments.NewEnv(experiments.DYRS, opt)
	defer env.Close()
	a := cluster.StartAlternating(env.Eng, env.Cl.Node(0), 2, 2.5, 10*time.Second, true)
	defer a.Stop()
	bb := cluster.StartAlternating(env.Eng, env.Cl.Node(1), 2, 2.5, 15*time.Second, false)
	defer bb.Stop()
	if err := env.WarmupEstimates(); err != nil {
		b.Fatal(err)
	}
	if err := env.CreateInput("sort-input", 20*sim.GB); err != nil {
		b.Fatal(err)
	}
	spec := env.Prepare(workload.SortSpec("sort-input", 14, true))
	spec.ExtraLeadTime = 5 * time.Second
	j, err := env.FW.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := env.WaitJob(j, time.Hour); err != nil {
		b.Fatal(err)
	}
	return j.Duration().Seconds()
}

// estimateReactionLag measures how long the migration-time estimate takes
// to triple after residual bandwidth suddenly drops — the quantity the
// §IV-A in-progress update exists to improve. It runs a steady stream of
// migrations on one node and switches heavy interference on mid-run.
func estimateReactionLag(b *testing.B, disableUpdates bool) float64 {
	b.Helper()
	eng := sim.NewEngine(benchSeed)
	cl := cluster.New(eng, 2, nil)
	fsCfg := dfs.DefaultConfig()
	fsCfg.Replication = 1
	fs := dfs.New(cl, fsCfg)
	mcfg := migration.DefaultConfig()
	mcfg.DisableInProgressUpdates = disableUpdates
	c := migration.NewCoordinator(fs, mcfg, migration.NewDYRSBinder())
	defer c.Shutdown()
	if _, err := fs.CreateFile("stream", 40*sim.GB); err != nil {
		b.Fatal(err)
	}
	if err := c.Migrate(1, []string{"stream"}, false); err != nil {
		b.Fatal(err)
	}
	const onset = 30.0
	node0 := cl.Node(0)
	eng.Schedule(time.Duration(onset*float64(time.Second)), func() {
		node0.StartInterference(8, 2)
	})
	eng.RunUntil(sim.Time(3 * time.Minute))
	baseline := 256 * float64(sim.MB) / node0.Cfg.DiskBandwidth
	for _, p := range c.EstimateSeries(0).Points() {
		if p.T > onset && p.V > 3*baseline {
			return p.T - onset
		}
	}
	return -1 // never reacted within the horizon
}

func BenchmarkAblationInProgressUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := estimateReactionLag(b, false)
		without := estimateReactionLag(b, true)
		if with < 0 || (without >= 0 && with >= without) {
			b.Fatalf("in-progress updates did not speed up estimate reaction: %.1fs vs %.1fs", with, without)
		}
		if i == 0 {
			b.Logf("estimate reaction lag after bandwidth drop: with in-progress updates %.1fs; completion-only %.1fs", with, without)
		}
	}
}

func BenchmarkAblationQueueDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, depth := range []int{1, 2, 4, 16} {
			depth := depth
			d := ablationSort(b, func(c *migration.Config) { c.QueueDepth = depth })
			if i == 0 {
				b.Logf("queue depth %2d: sort %.1fs", depth, d)
			}
		}
	}
}

func BenchmarkAblationIOWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []float64{0.1, 0.25, 1.0} {
			w := w
			d := ablationSort(b, func(c *migration.Config) { c.IOWeight = w })
			if i == 0 {
				b.Logf("migration IO weight %.2f: sort %.1fs", w, d)
			}
		}
	}
}

func BenchmarkAblationBindingPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := map[experiments.Policy]float64{}
		for _, p := range []experiments.Policy{experiments.DYRS, experiments.Naive, experiments.Ignem, experiments.HDFS} {
			env := experiments.NewEnv(p, experiments.DefaultOptions(benchSeed))
			stop := env.SlowNodeInterference(0)
			if err := env.WarmupEstimates(); err != nil {
				b.Fatal(err)
			}
			if err := env.CreateInput("sort-input", 20*sim.GB); err != nil {
				b.Fatal(err)
			}
			spec := env.Prepare(workload.SortSpec("sort-input", 14, p.Migrates()))
			spec.ExtraLeadTime = 20 * time.Second
			j, err := env.FW.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := env.WaitJob(j, time.Hour); err != nil {
				b.Fatal(err)
			}
			res[p] = j.Duration().Seconds()
			stop()
			env.Close()
		}
		if i == 0 {
			b.Logf("binding policy sort durations: %v", res)
		}
	}
}

// --- Microbenchmarks of the substrate ---

// benchEngineEvents measures the event-queue hot path: each iteration
// schedules a batch of 64 timers, cancels half of them (the Resource
// rebalance pattern), and drains the queue — so the drain is inside the
// measured region and ns/op covers the full schedule → cancel → fire
// lifecycle. With traced set, a trace.Tracer is attached, pinning the
// cost of the observability layer on this path (it must be nil-check
// noise: the engine never consults the tracer while firing events).
func benchEngineEvents(b *testing.B, traced bool) {
	eng := sim.NewEngine(1)
	if traced {
		trace.New(eng)
	}
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var evs [64]*sim.Event
		for j := range evs {
			evs[j] = eng.Schedule(time.Duration(j%16)*time.Millisecond, nop)
		}
		for j := 0; j < len(evs); j += 2 {
			eng.Cancel(evs[j])
		}
		eng.Run()
	}
}

func BenchmarkSimEngineEvents(b *testing.B)       { benchEngineEvents(b, false) }
func BenchmarkSimEngineEventsTraced(b *testing.B) { benchEngineEvents(b, true) }

// benchResourceFlows measures the fluid-flow hot path: each iteration
// admits 32 concurrent flows on one disk (every admission rebalances all
// active flows) and runs them to completion inside the measured region.
// The traced variant exercises the FlowSink callbacks on every start and
// completion, whose per-resource counter cells keep the overhead to a
// few increments and no allocations.
func benchResourceFlows(b *testing.B, traced bool) {
	eng := sim.NewEngine(1)
	if traced {
		trace.New(eng)
	}
	r := sim.NewResource(eng, "disk", 130*float64(sim.MB), sim.SeekEfficiency(0.05))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			r.Start(256*sim.MB, nil)
		}
		eng.Run()
	}
}

func BenchmarkResourceFlows(b *testing.B)       { benchResourceFlows(b, false) }
func BenchmarkResourceFlowsTraced(b *testing.B) { benchResourceFlows(b, true) }

// BenchmarkResourceChurn measures high fan-in add/cancel churn at a
// single NIC: 1k concurrent flows stay resident while batches of short
// flows are admitted and half of them cancelled mid-flight — the
// serving-workload pattern where hot-block reads funnel through one
// replica holder. The virtual-service-time core keeps each admission
// and indexed removal O(log n) instead of rescanning the resident set.
func BenchmarkResourceChurn(b *testing.B) {
	eng := sim.NewEngine(1)
	r := sim.NewResource(eng, "nic", 1250*float64(sim.MB), nil)
	resident := make([]*sim.Flow, 1000)
	for i := range resident {
		resident[i] = r.StartLoad(1)
	}
	eng.RunFor(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch [64]*sim.Flow
		for j := range batch {
			batch[j] = r.Start(sim.MB, nil)
		}
		eng.RunFor(time.Millisecond)
		for j := 0; j < len(batch); j += 2 {
			batch[j].Cancel()
		}
		eng.RunFor(500 * time.Millisecond) // drain the surviving half
	}
	b.StopTimer()
	for _, f := range resident {
		f.Cancel()
	}
}

// BenchmarkResourceCascade measures the same-instant completion storm:
// 512 identical flows admitted at one instant share one finish tag and
// all ripen in a single cascade. The finish-tag heap pops each in
// O(log n); the pre-rewrite model rescanned the flow list per
// completion, making this quadratic.
func BenchmarkResourceCascade(b *testing.B) {
	eng := sim.NewEngine(1)
	r := sim.NewResource(eng, "disk", 130*float64(sim.MB), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 512; j++ {
			r.Start(16*sim.MB, nil)
		}
		eng.Run()
	}
}

// TestScheduleHotPathAllocs pins the engine's steady-state allocation
// behaviour: once the event pool and heap are warm, scheduling, cancelling
// and firing events allocates nothing.
func TestScheduleHotPathAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	nop := func() {}
	for i := 0; i < 128; i++ {
		eng.Schedule(time.Millisecond, nop)
	}
	eng.Run()
	avg := testing.AllocsPerRun(200, func() {
		ev := eng.Schedule(time.Second, nop)
		eng.Cancel(ev)
		eng.Schedule(time.Millisecond, nop)
		eng.Run()
	})
	if avg != 0 {
		t.Errorf("engine schedule/cancel/fire hot path allocates %.2f objects/op, want 0", avg)
	}
}

// TestStartHotPathAllocs pins the resource admission hot path at zero
// allocations: in steady state a Start → complete cycle reuses a pooled
// Flow struct, the completion timer and flush event come from the
// engine's event pool, and every closure (timer, flush) was bound once
// at construction.
func TestStartHotPathAllocs(t *testing.T) {
	eng := sim.NewEngine(1)
	r := sim.NewResource(eng, "disk", 130*float64(sim.MB), sim.SeekEfficiency(0.05))
	for i := 0; i < 64; i++ {
		r.Start(sim.MB, nil)
	}
	eng.Run()
	avg := testing.AllocsPerRun(200, func() {
		r.Start(sim.MB, nil)
		eng.Run()
	})
	if avg != 0 {
		t.Errorf("Start hot path allocates %.2f objects/op, want 0", avg)
	}
}

func BenchmarkAlgorithm1UpdateTargets(b *testing.B) {
	// Scalability of the master's target-update pass (§III-D): the paper
	// reports updating 50GB of pending migrations in under a millisecond.
	eng := sim.NewEngine(1)
	cl := cluster.New(eng, 7, nil)
	fs := dfs.New(cl, dfs.DefaultConfig())
	binder := migration.NewDYRSBinder()
	c := migration.NewCoordinator(fs, migration.DefaultConfig(), binder)
	defer c.Shutdown()
	if _, err := fs.CreateFile("big", 50*sim.GB); err != nil {
		b.Fatal(err)
	}
	if err := c.Migrate(1, []string{"big"}, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binder.UpdateTargets()
	}
	if binder.PendingCount() == 0 {
		b.Fatal("pending list drained unexpectedly")
	}
}

func BenchmarkExtensionOrderPolicies(b *testing.B) {
	// The paper's §III future work: alternative migration scheduling
	// policies and cooperation with the job scheduler.
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunOrderPolicies(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkMotivationReadSpeedups(b *testing.B) {
	// The §I micro-comparison: block reads from RAM vs disk vs SSD, and
	// the 10x mapper speedup from pinned inputs.
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunMotivation(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MapperSpeedup() < 3 {
			b.Fatalf("mapper speedup %.1fx below calibration", rep.MapperSpeedup())
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkExtensionHotColdCache(b *testing.B) {
	// The paper's motivating gap: a PACMan-like cache accelerates hot
	// data only; DYRS covers singly-accessed cold data; they compose.
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunHotCold(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkExtensionIterativeColdStart(b *testing.B) {
	// §I: cold first iterations of iterative jobs (K-Means, LogReg) run
	// many times longer than later ones; DYRS shrinks the penalty.
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunIterative(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkExtensionSpeculationVsMigration(b *testing.B) {
	// Speculative execution treats straggler symptoms; DYRS removes one
	// of their causes (slow cold reads). With migration on, far fewer
	// speculative copies launch.
	run := func(policy experiments.Policy) (float64, int) {
		opt := experiments.DefaultOptions(benchSeed)
		opt.SlowNodes = map[int]float64{0: 0.05}
		env := experiments.NewEnv(policy, opt)
		defer env.Close()
		env.FW.EnableSpeculation(compute.DefaultSpeculation())
		defer env.FW.StopSpeculation()
		if err := env.WarmupEstimates(); err != nil {
			b.Fatal(err)
		}
		if err := env.CreateInput("in", 10*sim.GB); err != nil {
			b.Fatal(err)
		}
		spec := env.Prepare(workload.SortSpec("in", 8, policy.Migrates()))
		spec.ExtraLeadTime = 20 * time.Second
		j, err := env.FW.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := env.WaitJob(j, time.Hour); err != nil {
			b.Fatal(err)
		}
		return j.MapPhase().Seconds(), j.SpeculativeLaunched
	}
	for i := 0; i < b.N; i++ {
		hdfsMap, hdfsSpec := run(experiments.HDFS)
		dyrsMap, dyrsSpec := run(experiments.DYRS)
		if i == 0 {
			b.Logf("HDFS+speculation: map %.1fs, %d speculative copies; DYRS+speculation: map %.1fs, %d copies",
				hdfsMap, hdfsSpec, dyrsMap, dyrsSpec)
		}
	}
}

func BenchmarkExtensionAqueductRateControl(b *testing.B) {
	// Aqueduct-style adaptive migration priority (§VI related work):
	// compare a foreground job's duration with full-priority migration
	// vs the AIMD rate controller, while a large background migration
	// runs concurrently.
	run := func(adaptive bool) (fg float64, migrated sim.Bytes) {
		opt := experiments.DefaultOptions(benchSeed)
		mcfg := migration.DefaultConfig()
		mcfg.IOWeight = 1.0 // start at full priority either way
		opt.MigrationConfig = &mcfg
		env := experiments.NewEnv(experiments.DYRS, opt)
		defer env.Close()
		var rc *migration.RateController
		if adaptive {
			rc = migration.NewRateController(env.Coord, time.Second)
			defer rc.Stop()
		}
		// Big background migration request (no job attached to it yet).
		if err := env.CreateInput("background", 60*sim.GB); err != nil {
			b.Fatal(err)
		}
		if err := env.Coord.Migrate(1000, []string{"background"}, false); err != nil {
			b.Fatal(err)
		}
		// Foreground job arrives shortly after and reads cold data.
		if err := env.CreateInput("foreground", 6*sim.GB); err != nil {
			b.Fatal(err)
		}
		spec := env.Prepare(workload.SortSpec("foreground", 8, false))
		spec.Migrate = false // pure foreground victim
		var fgJob *compute.Job
		env.FW.SubmitAt(sim.Time(5*time.Second), spec, func(j *compute.Job, err error) {
			if err != nil {
				b.Error(err)
			}
			fgJob = j
		})
		env.Eng.RunUntil(sim.Time(10 * time.Minute))
		if fgJob == nil || fgJob.State != compute.JobDone {
			b.Fatal("foreground job did not finish")
		}
		return fgJob.Duration().Seconds(), env.Coord.Stats().BytesMigrated
	}
	for i := 0; i < b.N; i++ {
		fgStatic, migStatic := run(false)
		fgAdaptive, migAdaptive := run(true)
		if i == 0 {
			b.Logf("foreground job: %.1fs with full-priority migration (%.1fGB migrated) vs %.1fs with AIMD control (%.1fGB migrated)",
				fgStatic, float64(migStatic)/float64(sim.GB),
				fgAdaptive, float64(migAdaptive)/float64(sim.GB))
		}
	}
}

func BenchmarkAblationMemoryLimit(b *testing.B) {
	// The §IV-A1 hard memory limit: sweep the buffer budget and watch
	// migration throttle gracefully instead of failing.
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.002, 0.01, 0.05, 1.0} {
			frac := frac
			opt := experiments.DefaultOptions(benchSeed)
			mcfg := migration.DefaultConfig()
			mcfg.MemLimitFraction = frac
			opt.MigrationConfig = &mcfg
			env := experiments.NewEnv(experiments.DYRS, opt)
			if err := env.CreateInput("in", 20*sim.GB); err != nil {
				b.Fatal(err)
			}
			spec := env.Prepare(workload.SortSpec("in", 8, true))
			spec.ExtraLeadTime = 25 * time.Second
			j, err := env.FW.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := env.WaitJob(j, time.Hour); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				st := env.Coord.Stats()
				b.Logf("mem limit %5.1fGB/node: sort %.1fs, migrated %d, blocked-on-memory events on node0: %d",
					frac*64, j.Duration().Seconds(), st.Migrated,
					env.Coord.Slave(0).BlockedOnMemory)
			}
			env.Close()
		}
	}
}

func BenchmarkExtensionFairScheduler(b *testing.B) {
	// Cross-job scheduling policy under a SWIM prefix: fair sharing
	// keeps small jobs from queueing behind large ones, which also
	// spreads lead-time differently for migration.
	run := func(fair bool) float64 {
		env := experiments.NewEnv(experiments.DYRS, experiments.DefaultOptions(benchSeed))
		defer env.Close()
		if fair {
			env.FW.SetSchedPolicy(compute.SchedFair)
		}
		cfg := workload.DefaultSWIMConfig()
		cfg.Jobs = 60
		cfg.TotalInput = 50 * sim.GB
		trace := workload.GenerateSWIM(env.Eng.Rand(), cfg)
		for _, j := range trace {
			if err := env.CreateInput(j.FileName(), j.InputSize); err != nil {
				b.Fatal(err)
			}
		}
		for _, j := range trace {
			env.FW.SubmitAt(sim.Time(j.Arrival/4), env.Prepare(j.Spec(true)), nil)
		}
		if err := env.WaitJobs(len(trace), 4*time.Hour); err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, j := range env.FW.Results() {
			sum += j.Duration().Seconds()
		}
		return sum / float64(len(env.FW.Results()))
	}
	for i := 0; i < b.N; i++ {
		fifo := run(false)
		fair := run(true)
		if i == 0 {
			b.Logf("mean job duration: FIFO %.1fs, fair %.1fs", fifo, fair)
		}
	}
}

// --- Datacenter-scale macro-benchmarks ---

// benchScale runs one datacenter-scale preset per iteration and reports
// simulated events per wall-clock second — the engine-level throughput
// the scale family is gated on — alongside the usual ns/op and allocs.
// Run with -benchtime 1x: a single iteration is a complete days-long
// virtual-time run, so op counts beyond 1 only repeat identical work.
func benchScale(b *testing.B, opts experiments.ScaleOptions) {
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunScale(opts)
		if err != nil {
			b.Fatal(err)
		}
		events += row.EventsFired
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

func BenchmarkScale100(b *testing.B) { benchScale(b, experiments.Scale100Options(benchSeed)) }

func BenchmarkScale1k(b *testing.B) { benchScale(b, experiments.Scale1kOptions(benchSeed)) }

// BenchmarkScale1kSampled is BenchmarkScale1k with the deterministic
// 1-in-64 trace sampler attached — the configuration a 10k-node run
// would ship with. Its gated baseline keeps the observability tax
// honest: the sampled run must stay within the benchgate band of the
// untraced one.
func BenchmarkScale1kSampled(b *testing.B) {
	opts := experiments.Scale1kOptions(benchSeed)
	opts.SampleEvery = 64
	benchScale(b, opts)
}

func BenchmarkScale10k(b *testing.B) {
	if testing.Short() {
		b.Skip("scale10k runs ~10^8 events per iteration; skipped under -short")
	}
	benchScale(b, experiments.Scale10kOptions(benchSeed))
}

// --- Sharded-engine macro-benchmarks ---

// scaleShard1Ns remembers the 1-worker median of the scaleshard1k
// preset so the wider runs can report their speedup against it. The
// benchmarks run in definition order, so when the full family is
// selected the baseline is always measured first; under a filter that
// skips the 1-worker run the speedup metric is simply omitted.
var scaleShard1Ns float64

// benchScaleShard runs the scaleshard1k preset on the sharded engine
// with the given execution-worker count. Reported metrics: events/sec
// (throughput), sys-MiB (peak OS-claimed memory) and, for workers > 1,
// speedup-vs-1. The row's digest is worker-invariant, so any scheduling
// nondeterminism the race detector misses would still show up here as a
// digest panic in the experiment's end-of-run invariants.
func benchScaleShard(b *testing.B, workers int) {
	opts := experiments.ScaleShard1kOptions(benchSeed)
	opts.Workers = workers
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunScaleShard(opts)
		if err != nil {
			b.Fatal(err)
		}
		events += row.EventsFired
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.Sys)/(1<<20), "sys-MiB")
	nsPerOp := secs * 1e9 / float64(b.N)
	if workers == 1 {
		scaleShard1Ns = nsPerOp
	} else if scaleShard1Ns > 0 && nsPerOp > 0 {
		b.ReportMetric(scaleShard1Ns/nsPerOp, "speedup-vs-1")
	}
}

func BenchmarkScale1kShards1(b *testing.B) { benchScaleShard(b, 1) }
func BenchmarkScale1kShards2(b *testing.B) { benchScaleShard(b, 2) }
func BenchmarkScale1kShards4(b *testing.B) { benchScaleShard(b, 4) }
func BenchmarkScale1kShards8(b *testing.B) { benchScaleShard(b, 8) }

// --- Serving macro-benchmark ---

// BenchmarkServing1k drives the multi-tenant serving workload on the
// 1,000-node preset: ~100k open-loop Zipf/diurnal block reads through
// the coordinated cache with DYRS epoch prefetch. Run with -benchtime
// 1x — one iteration is a complete 20-minute virtual serving day.
func BenchmarkServing1k(b *testing.B) {
	b.ReportAllocs()
	opt := experiments.Serving1kOptions(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunServing(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) != 1 || rep.Rows[0].Served == 0 {
			b.Fatal("serving benchmark produced no scorecard")
		}
	}
}
